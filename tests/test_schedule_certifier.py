"""The happens-before schedule certifier: clean plans certify, mutations don't.

Three layers of evidence:

* every planner output across tree kinds, shapes, and domain sizes
  certifies clean, including preset-derived geometries;
* a Hypothesis property: dropping a random DAG edge is flagged *exactly*
  when it breaks the transitive happens-before of its endpoints (so the
  certifier neither misses planted races nor cries wolf on transitively
  redundant edges);
* wavefront-partition mutations (cross-level swap, duplicated op, dropped
  op, merged dependent levels) are all detected.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.races import (
    ancestor_closure,
    certify_geometry,
    certify_schedule,
    drop_graph_edge,
    graph_edge_list,
    happens_before,
    op_access_regions,
    regions_overlap,
    self_check,
    swap_wavefronts,
)
from repro.experiments.presets import scaled
from repro.qr.dag import op_dependency_graph
from repro.qr.ops import expand_plans
from repro.qr.wavefront import compute_wavefronts
from repro.tiles.layout import TileLayout
from repro.trees.plan import TreeKind, plan_all_panels
from repro.util.errors import ScheduleCertificationError

TREES = ["flat", "binary", "hier", "greedy"]
GEOMETRIES = [
    (256, 64, 32, 2),
    (512, 96, 32, 3),
    (384, 128, 64, 2),
]


@lru_cache(maxsize=None)
def make_schedule(tree: str, m: int, n: int, nb: int, h: int):
    layout = TileLayout(m, n, nb)
    plans = plan_all_panels(TreeKind.coerce(tree), layout.mt, layout.nt, h=h)
    ops = expand_plans(layout, plans)
    graph = op_dependency_graph(ops)
    wavefronts = compute_wavefronts(ops, graph)
    return ops, graph, wavefronts


# -- clean plans certify ------------------------------------------------------


@pytest.mark.parametrize("tree", TREES)
@pytest.mark.parametrize("m,n,nb,h", GEOMETRIES)
def test_planner_output_certifies_clean(tree, m, n, nb, h):
    ops, graph, wavefronts = make_schedule(tree, m, n, nb, h)
    cert = certify_schedule(ops, graph, wavefronts)
    assert cert.ok and not cert.violations
    assert cert.n_ops == len(ops)
    assert cert.n_wavefronts == len(wavefronts)
    assert cert.ww_pairs > 0 and cert.raw_pairs > 0
    # Every WAR pair the DAG leaves unordered must be proven disjoint.
    assert cert.war_decoupled == cert.war_pairs


@pytest.mark.parametrize("tree", TREES)
def test_certify_without_wavefronts_and_self_built_graph(tree):
    ops, _, _ = make_schedule(tree, 256, 64, 32, 2)
    cert = certify_schedule(ops)  # certifier builds the DAG itself
    assert cert.ok
    assert cert.n_wavefronts == -1


def test_preset_geometries_certify_clean():
    cfg = scaled(16)
    for tree in cfg.trees:
        cert = certify_geometry(
            cfg.fig10_m[0], cfg.n, cfg.nb, tree=tree, h=cfg.h
        )
        assert cert.ok, f"{tree}: {cert.summary()}"


def test_certificate_json_and_summary():
    ops, graph, wavefronts = make_schedule("hier", 256, 64, 32, 2)
    cert = certify_schedule(ops, graph, wavefronts)
    doc = cert.to_json()
    assert doc["ok"] is True
    assert doc["n_ops"] == len(ops)
    assert doc["violations"] == []
    assert "CERTIFIED" in cert.summary()


def test_region_model_basics():
    assert regions_overlap("full", "rtri")
    assert regions_overlap("full", "vlow")
    assert not regions_overlap("rtri", "vlow")
    assert not regions_overlap("ttop", "vlow")
    ops, _, _ = make_schedule("hier", 256, 64, 32, 2)
    for op in ops:
        reads, writes = op_access_regions(op)
        assert {t for t, _ in reads} == set(op.reads())
        assert {t for t, _ in writes} == set(op.writes())


# -- mutation detection -------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    tree=st.sampled_from(TREES),
    geometry=st.sampled_from(GEOMETRIES[:2]),
    data=st.data(),
)
def test_dropped_edge_flagged_iff_happens_before_breaks(tree, geometry, data):
    m, n, nb, h = geometry
    ops, graph, _ = make_schedule(tree, m, n, nb, h)
    n_edges = len(graph_edge_list(graph))
    idx = data.draw(st.integers(min_value=0, max_value=n_edges - 1))
    mutated, (u, v) = drop_graph_edge(graph, idx)
    anc = ancestor_closure(mutated)
    assert anc is not None  # removing an edge cannot create a cycle
    load_bearing = not happens_before(anc, u, v)
    cert = certify_schedule(ops, mutated)
    if load_bearing:
        assert not cert.ok, (
            f"dropping load-bearing edge {u}->{v} went undetected"
        )
        assert any(
            u in viol.ops and v in viol.ops for viol in cert.violations
        ) or cert.truncated
    else:
        assert cert.ok, (
            f"transitively redundant edge {u}->{v} caused a false positive: "
            + cert.summary()
        )


def test_self_check_passes_on_valid_plans():
    for tree in ("flat", "hier"):
        ops, _, _ = make_schedule(tree, 256, 64, 32, 2)
        report = self_check(ops)
        assert report["ok"]
        assert report["edges_tried"] > 0
        assert (
            report["edges_detected"] + report["edges_redundant"]
            == report["edges_tried"]
        )
        assert report["wavefront_swap_detected"]


def test_cross_level_wavefront_swap_is_flagged():
    ops, graph, wavefronts = make_schedule("hier", 512, 96, 32, 3)
    assert len(wavefronts) >= 2
    swapped = swap_wavefronts(wavefronts, 0, len(wavefronts) - 1)
    cert = certify_schedule(ops, graph, swapped)
    assert not cert.ok
    assert all(v.kind.startswith("wavefront-") for v in cert.violations)


def test_duplicated_and_missing_ops_break_the_partition():
    ops, graph, wavefronts = make_schedule("flat", 256, 64, 32, 2)
    dup = [list(w) for w in wavefronts]
    dup[-1].append(dup[0][0])
    cert = certify_schedule(ops, graph, dup)
    assert not cert.ok
    assert any(v.kind == "wavefront-partition" for v in cert.violations)

    missing = [list(w) for w in wavefronts]
    missing[0] = missing[0][1:] if len(missing[0]) > 1 else missing[0]
    missing[-1] = missing[-1][:-1]
    cert = certify_schedule(ops, graph, missing)
    assert not cert.ok
    assert any(v.kind == "wavefront-partition" for v in cert.violations)


def test_merging_dependent_wavefronts_is_flagged():
    ops, graph, wavefronts = make_schedule("binary", 256, 64, 32, 2)
    assert len(wavefronts) >= 2
    merged = [wavefronts[0] + wavefronts[1]] + [
        list(w) for w in wavefronts[2:]
    ]
    cert = certify_schedule(ops, graph, merged)
    assert not cert.ok
    assert all(v.kind.startswith("wavefront-") for v in cert.violations)


# -- qr_factor integration ----------------------------------------------------


def test_qr_factor_verify_schedule_serial_and_batched():
    from repro.qr.api import qr_factor

    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 64))
    ref = qr_factor(a, nb=32, ib=16)
    for backend in ("serial", "batched"):
        f = qr_factor(a, nb=32, ib=16, backend=backend, verify_schedule=True)
        np.testing.assert_array_equal(f.R, ref.R)


def test_qr_factor_verify_schedule_rejects_poisoned_session_cache():
    import repro
    from repro.qr.api import qr_factor

    rng = np.random.default_rng(1)
    a = rng.standard_normal((256, 64))
    with repro.QRSession(n_procs=2) as sess:
        qr_factor(a, nb=32, ib=16, backend="batched", session=sess,
                  verify_schedule=True)
        (entry,) = sess.plan_cache._entries.values()
        graph = entry.graph()
        # Poison the cached DAG: drop the first load-bearing edge.
        for idx in range(len(graph_edge_list(graph))):
            mutated, (u, v) = drop_graph_edge(graph, idx)
            anc = ancestor_closure(mutated)
            if not happens_before(anc, u, v):
                break
        else:
            pytest.fail("no load-bearing edge found")
        entry._graph = mutated
        with pytest.raises(ScheduleCertificationError, match="certification"):
            qr_factor(a, nb=32, ib=16, backend="batched", session=sess,
                      verify_schedule=True)
