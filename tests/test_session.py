"""Integration tests: persistent QRSession (worker pool + plan cache).

The session must be an invisible optimisation: every ``session.factor``
call returns factors bit-identical to a fresh one-shot ``qr_factor`` —
warm pool or cold, crashed workers or not.  On top of that invariant these
tests pin the session-specific bookkeeping: plan-cache hit/miss/eviction
accounting (eviction must destroy the cached shared-memory arena),
generation tags surviving across calls (so a generation-0 ``FaultPlan``
cannot re-kill a respawned pool worker), and the ``pool.*`` / ``plan.*``
observability counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FaultPlan, QRSession, qr_factor
from repro.qr.session import PlanCache, WorkerPool
from repro.tiles import random_dense
from repro.util import ConfigurationError

KW = dict(nb=8, ib=4, tree="hier", h=3)


class TestPlanCache:
    def test_hit_miss_accounting(self):
        with QRSession(n_procs=2, plan_cache_size=4) as sess:
            a = random_dense(40, 24, seed=0)
            b = random_dense(40, 24, seed=1)
            sess.factor(a, **KW)
            assert (sess.plan_cache.stats.hits, sess.plan_cache.stats.misses) == (0, 1)
            sess.factor(b, **KW)  # same geometry: hit
            assert (sess.plan_cache.stats.hits, sess.plan_cache.stats.misses) == (1, 1)
            sess.factor(a, nb=8, ib=4, tree="binary")  # new key: miss
            assert sess.plan_cache.stats.misses == 2
            assert len(sess.plan_cache) == 2

    def test_auto_h_shares_entry_with_explicit_h(self):
        # h="auto" resolves before the cache lookup, so it keys the same
        # entry as the integer it resolves to.
        from repro.machine import kraken
        from repro.trees import choose_domain_size

        a = random_dense(40, 24, seed=0)
        with QRSession(n_procs=2) as sess:
            resolved = choose_domain_size(
                5, machine=kraken(), nb=8, ib=4, workers=sess.n_procs
            )
            sess.factor(a, nb=8, ib=4, tree="hier", h=resolved)
            sess.factor(a, nb=8, ib=4, tree="hier", h="auto")
            assert sess.plan_cache.stats.hits == 1

    def test_eviction_destroys_arena(self):
        with QRSession(n_procs=2, plan_cache_size=1) as sess:
            a = random_dense(40, 24, seed=0)
            sess.factor(a, **KW)
            entry = next(iter(sess.plan_cache._entries.values()))
            arena = entry._arena
            assert arena is not None
            name = arena.store.name
            sess.factor(a, nb=8, ib=4, tree="flat")  # evicts the hier entry
            assert sess.plan_cache.stats.evictions == 1
            assert len(sess.plan_cache) == 1
            assert entry._arena is None  # close() ran
            from repro.tiles.shared import attach_untracked

            with pytest.raises(OSError):
                attach_untracked(name)  # segment unlinked with the entry

    def test_lru_order(self):
        cache = PlanCache(maxsize=2)
        for key in ("a", "b"):
            cache.lookup((key,), lambda: (None, []))
        cache.lookup(("a",), lambda: (None, []))  # refresh "a"
        cache.lookup(("c",), lambda: (None, []))  # evicts "b", not "a"
        assert ("a",) in cache._entries and ("c",) in cache._entries
        assert ("b",) not in cache._entries


class TestBitExactness:
    def test_warm_pool_matches_fresh_spawn(self, small_matrix):
        ser = qr_factor(small_matrix, **KW)
        one = qr_factor(small_matrix, **KW, backend="parallel", n_procs=2)
        with QRSession(n_procs=2) as sess:
            sess.factor(random_dense(40, 24, seed=9), **KW)  # warm the plan
            warm = sess.factor(small_matrix, **KW)
            wf = sess.factor(small_matrix, **KW, batch="wavefront")
        for f in (one, warm, wf):
            np.testing.assert_array_equal(ser.R, f.R)
        probe = np.linspace(0.0, 1.0, small_matrix.shape[0])
        np.testing.assert_array_equal(ser.qt_matmul(probe), warm.qt_matmul(probe))
        assert warm.stats.mode == "parallel"
        # Warm call reuses live workers: no process spawn in the lease.
        assert warm.stats.spawn_s < one.stats.spawn_s

    def test_serial_and_batched_backends(self, small_matrix):
        ser = qr_factor(small_matrix, **KW)
        with QRSession(n_procs=2) as sess:
            f_ser = sess.factor(small_matrix, **KW, backend="serial")
            f_bat = sess.factor(small_matrix, **KW, backend="batched")
            np.testing.assert_array_equal(ser.R, f_ser.R)
            np.testing.assert_array_equal(ser.R, f_bat.R)
            # serial derives the plan (miss), batched reuses it (hit) and
            # only then derives wavefronts once.
            assert sess.plan_cache.stats.hits == 1

    def test_n_procs_1_falls_back(self, small_matrix):
        ser = qr_factor(small_matrix, **KW)
        with QRSession(n_procs=1) as sess:
            assert sess.pool is None
            f = sess.factor(small_matrix, **KW)
            assert f.stats.mode == "serial-fallback"
            np.testing.assert_array_equal(ser.R, f.R)


class TestChaos:
    def test_worker_killed_between_calls(self, small_matrix):
        ser = qr_factor(small_matrix, **KW)
        with QRSession(n_procs=2) as sess:
            f1 = sess.factor(small_matrix, **KW)
            gen_before = dict(sess.pool.generations)
            sess.pool.procs[0].terminate()
            sess.pool.procs[0].join()
            f2 = sess.factor(small_matrix, **KW)  # lease respawns rank 0
            np.testing.assert_array_equal(ser.R, f1.R)
            np.testing.assert_array_equal(ser.R, f2.R)
            assert sess.pool.generations[0] == gen_before[0] + 1
            assert sess.pool.generations[1] == gen_before[1]
            assert sess.pool.alive_count() == 2

    def test_fault_plan_crash_and_generation_persistence(self, small_matrix):
        ser = qr_factor(small_matrix, **KW)
        plan = FaultPlan(crash_workers={0: 0})
        with QRSession(n_procs=2) as sess:
            f1 = sess.factor(small_matrix, **KW, fault_plan=plan)
            assert f1.stats.workers_died == 1
            assert f1.stats.workers_respawned == 1
            assert f1.stats.mode == "parallel"
            np.testing.assert_array_equal(ser.R, f1.R)
            # Rank 0 is now generation 1; the same plan kills generation 0
            # only, so the next call must run clean.
            assert sess.pool.generations[0] == 1
            f2 = sess.factor(small_matrix, **KW, fault_plan=plan)
            assert f2.stats.workers_died == 0
            np.testing.assert_array_equal(ser.R, f2.R)


class TestValidation:
    def test_pulsar_backend_rejected(self, small_matrix):
        with QRSession(n_procs=2) as sess:
            with pytest.raises(ConfigurationError, match="session="):
                sess.factor(small_matrix, **KW, backend="pulsar")

    def test_n_procs_mismatch_rejected(self, small_matrix):
        with QRSession(n_procs=2) as sess:
            with pytest.raises(ConfigurationError, match="n_procs"):
                qr_factor(
                    small_matrix, **KW, backend="parallel", n_procs=3, session=sess
                )
            # The session's own n_procs is fine to restate.
            qr_factor(small_matrix, **KW, backend="parallel", n_procs=2, session=sess)

    def test_closed_session_rejected(self, small_matrix):
        sess = QRSession(n_procs=2)
        sess.close()
        sess.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            sess.factor(small_matrix, **KW)

    def test_pool_size_validated(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(0)
        with pytest.raises(ConfigurationError):
            QRSession(n_procs=2, plan_cache_size=0)


class TestObservability:
    def test_pool_and_plan_counters(self, small_matrix, tmp_path):
        with QRSession(n_procs=2) as sess:
            cold = sess.factor(small_matrix, **KW, trace=str(tmp_path / "c.json"))
            warm = sess.factor(small_matrix, **KW, trace=str(tmp_path / "w.json"))
        assert cold.counters["plan.misses"] == 1
        assert cold.counters["pool.leases"] == 1
        assert cold.counters["pool.spawns"] == 2
        assert "pool.reused" not in warm.counters or warm.counters["pool.reused"] == 2
        assert warm.counters["plan.hits"] == 1
        assert warm.counters["pool.leases"] == 1
        assert warm.counters.get("pool.spawns", 0) == 0
        assert warm.counters["pool.reused"] == 2

    def test_traces_validate(self, small_matrix, tmp_path):
        from repro.obs.validate import validate_chrome_trace

        path = tmp_path / "session.json"
        with QRSession(n_procs=2) as sess:
            sess.factor(small_matrix, **KW, trace=str(path))
        validate_chrome_trace(path)
