"""Causal run telemetry: trace context, events, registry, health, monitor.

Covers the guarantees documented in docs/observability.md ("Trace
context", "Structured event log", "Run registry", "Health dashboard"):
every span and event of one factorization carries the same minted
``run_id`` across process and thread boundaries, causal parent edges
resolve with zero orphans, fault injection surfaces as registry counter
deltas, and a resumed run records the snapshot writer as its parent.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import qr_factor
from repro.faults import FaultPlan
from repro.faults.watchdog import Watchdog
from repro.obs import (
    EVENT_TYPES,
    Event,
    EventLog,
    MetricsSampler,
    RunRegistry,
    anomaly_flags,
    build_record,
    causal_edges,
    current_run_id,
    diff_records,
    mint_run_id,
    read_events,
    recording,
    register_counter_prefix,
    use_run,
    validate_chrome_trace,
    validate_counters,
    validate_run_telemetry,
)
from repro.obs import monitor as obs_monitor
from repro.obs import registry as obs_registry
from repro.obs import validate as obs_validate
from repro.obs.record import Span
from repro.qr.persist import CheckpointStore, resume_factorization
from repro.qr.session import QRSession
from repro.util.errors import ConfigurationError, TraceError, WatchdogTimeout

M, N, NB, IB = 96, 32, 16, 8


def _factor(a, tmp_path, tag, **kw):
    trace = tmp_path / f"{tag}.trace.json"
    events = tmp_path / f"{tag}.events.jsonl"
    f = qr_factor(a, nb=NB, ib=IB, trace=trace, events=events, **kw)
    return f, json.loads(trace.read_text()), read_events(events)


# -- trace context -----------------------------------------------------------


def test_run_ids_are_unique_and_sortable():
    ids = [mint_run_id() for _ in range(50)]
    assert len(set(ids)) == 50
    assert all(r.split("-")[0].isdigit() is False or True for r in ids)


def test_use_run_nests_and_restores():
    assert current_run_id() is None
    with use_run("outer"):
        assert current_run_id() == "outer"
        with use_run("inner", parent_run_id="outer"):
            assert current_run_id() == "inner"
        assert current_run_id() == "outer"
    assert current_run_id() is None


def test_every_factorization_gets_a_run_id_without_telemetry():
    a = np.random.default_rng(0).standard_normal((M, N))
    f1 = qr_factor(a, nb=NB, ib=IB)
    f2 = qr_factor(a, nb=NB, ib=IB)
    assert f1.run_id and f2.run_id and f1.run_id != f2.run_id


# -- the acceptance scenario: faulty parallel run ----------------------------


@pytest.fixture(scope="module")
def faulty_parallel(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("telemetry")
    a = np.random.default_rng(0).standard_normal((M, N))
    reg = RunRegistry(tmp / "runs.jsonl")
    clean = qr_factor(
        a, nb=NB, ib=IB, backend="parallel", n_procs=2,
        trace=tmp / "clean.json", events=tmp / "clean.jsonl", registry=reg,
    )
    plan = FaultPlan(crash_workers={1: 1}, flip_rate=0.3, seed=7)
    faulty = qr_factor(
        a, nb=NB, ib=IB, backend="parallel", n_procs=2, fault_plan=plan,
        trace=tmp / "faulty.json", events=tmp / "faulty.jsonl", registry=reg,
    )
    return dict(
        tmp=tmp, a=a, reg=reg, clean=clean, faulty=faulty,
        doc=json.loads((tmp / "faulty.json").read_text()),
        events=read_events(tmp / "faulty.jsonl"),
    )


def test_faulty_run_recovered_bit_exactly(faulty_parallel):
    clean, faulty = faulty_parallel["clean"], faulty_parallel["faulty"]
    np.testing.assert_array_equal(clean.R, faulty.R)
    assert faulty.stats.workers_respawned >= 1


def test_all_spans_and_events_share_one_run_id(faulty_parallel):
    doc, events = faulty_parallel["doc"], faulty_parallel["events"]
    run_id = faulty_parallel["faulty"].run_id
    assert doc["otherData"]["run_id"] == run_id
    assert events and {e["run"] for e in events} == {run_id}
    # every X span carries an id; every parent edge resolves (zero orphans)
    validate_run_telemetry(doc, events=events)


def test_fault_events_were_emitted_with_identity(faulty_parallel):
    by_type = {}
    for e in faulty_parallel["events"]:
        by_type.setdefault(e["type"], []).append(e)
    for required in ("run.start", "run.end", "worker.dead", "fault.crash",
                     "worker.respawn", "retry.redispatch", "sdc.injected",
                     "sdc.detected", "sdc.recovered"):
        assert required in by_type, f"missing event type {required}"
    dead = by_type["worker.dead"][0]
    assert dead["worker"] == 1 and "span" in dead
    assert by_type["run.end"][0]["status"] == "ok"


def test_causal_edges_resolve_and_kernels_have_a_root(faulty_parallel):
    spans = [
        e for e in faulty_parallel["doc"]["traceEvents"] if e["ph"] == "X"
    ]
    edges = causal_edges(
        Span(e["name"], e.get("cat", ""), 0.0, 0.0,
             span_id=e["args"]["span"], parent_id=e["args"].get("parent"))
        for e in spans
    )
    roots = [sid for sid, parent in edges.items() if parent is None]
    assert roots, "expected at least one root span"
    kernel_parents = {
        e["args"].get("parent") for e in spans if e["name"] in ("GEQRT", "TSQRT")
    }
    assert kernel_parents and None not in kernel_parents


def test_registry_diff_surfaces_injected_faults(faulty_parallel):
    recs = faulty_parallel["reg"].load()
    assert [r["run"] for r in recs] == [
        faulty_parallel["clean"].run_id, faulty_parallel["faulty"].run_id
    ]
    d = diff_records(recs[0], recs[1])
    assert d["comparable"]
    for key in ("fault.crash", "worker.dead", "worker.restart",
                "retry.redispatch", "sdc.injected", "sdc.recovered"):
        va, vb = d["counters"][key]
        assert va == 0 and vb >= 1
    assert d["events"]["worker.respawn"] == (0, 1)


def test_registry_anomaly_flags_fire_on_fault_families(faulty_parallel):
    recs = faulty_parallel["reg"].load()
    flags = anomaly_flags(recs[1], recs[:1])
    assert any(f.startswith("faults:") for f in flags)
    assert any(f.startswith("sdc:") for f in flags)
    assert anomaly_flags(recs[0], []) == []


def test_registry_cli_list_show_diff(faulty_parallel, capsys):
    path = str(faulty_parallel["reg"].path)
    runs = [r["run"] for r in faulty_parallel["reg"].load()]
    assert obs_registry.main(["list", path]) == 0
    out = capsys.readouterr().out
    assert runs[0] in out and "faults:" in out
    assert obs_registry.main(["show", path, runs[1]]) == 0
    shown = json.loads(capsys.readouterr().out)
    assert shown["run"] == runs[1]
    assert obs_registry.main(["diff", path, runs[0], runs[1]]) == 0
    out = capsys.readouterr().out
    assert "fault.crash" in out and "+1" in out


def test_registry_cli_errors(tmp_path, capsys):
    missing = str(tmp_path / "none.jsonl")
    assert obs_registry.main(["show", missing, "xyz"]) == 1
    assert "error" in capsys.readouterr().err


def test_validator_cli_run_mode(faulty_parallel, capsys):
    tmp = faulty_parallel["tmp"]
    rc = obs_validate.main([
        "--run", "--events", str(tmp / "faulty.jsonl"), str(tmp / "faulty.json")
    ])
    assert rc == 0
    assert "run telemetry ok" in capsys.readouterr().out


def test_validator_rejects_orphan_edges_and_missing_run():
    base = {
        "traceEvents": [
            {"name": "k", "ph": "X", "ts": 0.0, "dur": 1.0, "pid": 0,
             "tid": 0, "args": {"span": 1, "parent": 99}},
        ],
        "otherData": {"clock": "real", "counters": {}, "run_id": "r-1"},
    }
    with pytest.raises(TraceError, match="orphan"):
        validate_run_telemetry(base)
    no_run = {**base, "otherData": {"clock": "real", "counters": {}}}
    with pytest.raises(TraceError, match="run_id"):
        validate_run_telemetry(no_run)


def test_validator_rejects_event_from_another_run(faulty_parallel):
    doc = faulty_parallel["doc"]
    alien = [{"t": 0.0, "type": "run.start", "run": "someone-else"}]
    with pytest.raises(TraceError, match="belongs to run"):
        validate_run_telemetry(doc, events=alien)


# -- event log ---------------------------------------------------------------


def test_event_schema_rejects_unknown_types_and_fields():
    log = EventLog()
    with pytest.raises(TraceError, match="unknown event type"):
        log.emit(Event(0.0, "nonsense.type", "r-1"))
    with pytest.raises(TraceError, match="undeclared fields"):
        log.emit(Event(0.0, "fault.crash", "r-1", data={"bogus": 1}))


def test_event_ring_bounds_memory_but_totals_survive():
    log = EventLog(capacity=4)
    for i in range(10):
        log.emit(Event(float(i), "ckpt.write", "r-1", data={"ops_done": i}))
    assert [e.data["ops_done"] for e in log.snapshot()] == [6, 7, 8, 9]
    assert log.totals() == {"ckpt.write": 10}
    assert log.n_emitted == 10


def test_event_sink_writes_flat_jsonl(tmp_path):
    path = tmp_path / "ev.jsonl"
    log = EventLog()
    log.open_sink(path)
    with pytest.raises(TraceError, match="already has an open sink"):
        log.open_sink(path)
    log.emit(Event(0.5, "worker.dead", "r-1", worker=3,
                   data={"exit_code": 9}))
    log.close_sink()
    log.close_sink()  # idempotent
    [ev] = read_events(path)
    assert ev == {"t": 0.5, "type": "worker.dead", "run": "r-1", "worker": 3,
                  "exit_code": 9}


def test_event_vocabulary_never_shadows_the_envelope():
    reserved = {"t", "type", "run", "worker", "op", "span"}
    for etype, fields in EVENT_TYPES.items():
        assert not (reserved & fields), etype


# -- counter-vocabulary lint -------------------------------------------------


def test_canonical_counters_pass_and_typos_fail():
    validate_counters({"ops.total": 1, "flops.GEQRT": 2, "worker.dead": 0})
    with pytest.raises(TraceError, match="wroker.dead"):
        validate_counters({"wroker.dead": 1})


def test_registered_prefix_is_allowed():
    with pytest.raises(TraceError):
        validate_counters({"myexp.iterations": 3})
    register_counter_prefix("myexp.")
    try:
        validate_counters({"myexp.iterations": 3})
    finally:
        obs_validate._DYNAMIC_PREFIXES.discard("myexp.")


def test_chrome_trace_validation_lints_counters():
    doc = {
        "traceEvents": [],
        "otherData": {"clock": "real", "counters": {"tpyo.key": 1.0}},
    }
    with pytest.raises(TraceError, match="tpyo.key"):
        validate_chrome_trace(doc)


def test_live_trace_counters_pass_the_lint(tmp_path):
    a = np.random.default_rng(2).standard_normal((M, N))
    f, doc, _ = _factor(a, tmp_path, "lint", backend="batched")
    validate_chrome_trace(doc)  # includes the counter lint


# -- checkpoint / resume parentage -------------------------------------------


def test_resume_records_parent_run(tmp_path):
    a = np.random.default_rng(3).standard_normal((M, N))
    ck = tmp_path / "ck.npz"
    writer = qr_factor(
        a, nb=NB, ib=IB, checkpoint=CheckpointStore(ck, every_ops=4),
        events=tmp_path / "ck.events.jsonl",
    )
    ckpt_events = [
        e for e in read_events(tmp_path / "ck.events.jsonl")
        if e["type"] == "ckpt.write"
    ]
    assert ckpt_events and ckpt_events[0]["ops_done"] >= 1
    with recording() as rec:
        resumed = resume_factorization(ck)
        resume_events = [e for e in rec.events.snapshot() if e.type == "resume"]
    assert resumed.parent_run_id == writer.run_id
    assert resumed.run_id != writer.run_id
    assert resume_events[0].data["parent_run"] == writer.run_id
    np.testing.assert_array_equal(resumed.R, writer.R)


def test_resume_tolerates_archives_without_run_entry(tmp_path):
    from repro.qr import persist

    a = np.random.default_rng(4).standard_normal((M, N))
    ck = tmp_path / "ck.npz"
    qr_factor(a, nb=NB, ib=IB, checkpoint=CheckpointStore(ck, every_ops=4))
    arrays = persist._read_archive(ck, persist._FMT_CHECKPOINT)
    del arrays["__run__"], arrays["__digest__"]
    arrays["__digest__"] = persist._archive_digest(arrays)
    persist._atomic_write_npz(str(ck), arrays, compressed=False)
    resumed = resume_factorization(ck)
    assert resumed.parent_run_id is None


# -- session health ----------------------------------------------------------


def test_session_health_snapshot():
    a = np.random.default_rng(5).standard_normal((M, N))
    with QRSession(n_procs=2) as sess:
        before = sess.health()
        assert before["last_run_id"] is None and not before["closed"]
        f = sess.factor(a, nb=NB, ib=IB)
        h = sess.health()
    assert h["last_run_id"] == f.run_id
    assert h["pool"]["size"] == 2 and h["pool"]["alive"] == 2
    assert all(w["alive"] for w in h["pool"]["workers"])
    assert h["plan_cache"]["entries"] == 1 and h["plan_cache"]["misses"] == 1
    assert sess.health()["closed"]


def test_session_health_without_pool():
    with QRSession(n_procs=1) as sess:
        assert sess.health()["pool"] is None


def test_session_run_propagates_one_run_id(tmp_path):
    a = np.random.default_rng(6).standard_normal((M, N))
    with QRSession(n_procs=2) as sess:
        trace = tmp_path / "sess.json"
        events = tmp_path / "sess.jsonl"
        f = sess.factor(a, nb=NB, ib=IB, trace=trace, events=events)
        doc = json.loads(trace.read_text())
        validate_run_telemetry(doc, events=events)
        assert doc["otherData"]["run_id"] == f.run_id
        evs = read_events(events)
        assert {e["run"] for e in evs} == {f.run_id}
        assert any(e["type"] == "pool.lease" for e in evs)
        assert any(e["type"] == "pool.spawn" for e in evs)


# -- pulsar ------------------------------------------------------------------


def test_pulsar_spans_events_and_packets_share_the_run(tmp_path):
    a = np.random.default_rng(7).standard_normal((M, N))
    f, doc, events = _factor(
        a, tmp_path, "pulsar", backend="pulsar", n_nodes=2, workers_per_node=2
    )
    validate_run_telemetry(doc, events=events)
    assert doc["otherData"]["run_id"] == f.run_id
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    fire_ids = {e["args"]["span"] for e in spans if e["name"] == "fire"}
    kernels = [e for e in spans if e["name"] in ("GEQRT", "TSQRT", "TTQRT")]
    assert kernels
    assert all(e["args"].get("parent") in fire_ids for e in kernels)


def test_pulsar_packet_carries_run_id():
    from repro.pulsar.packet import Packet

    pkt = Packet(data=np.zeros(2))
    assert pkt.run_id is None
    pkt2 = Packet(data=np.zeros(2), run_id="r-42")
    assert pkt2.run_id == "r-42"


def test_pulsar_lossy_fabric_emits_retry_events(tmp_path):
    a = np.random.default_rng(8).standard_normal((M, N))
    plan = FaultPlan(drop_rate=0.3, seed=5)
    f, doc, events = _factor(
        a, tmp_path, "lossy", backend="pulsar", n_nodes=2, workers_per_node=1,
        fault_plan=plan,
    )
    validate_run_telemetry(doc, events=events)
    if f.stats.retransmits:  # drop pattern is seed-deterministic but keep robust
        assert any(e["type"] == "retry.resend" for e in events)


# -- watchdog ----------------------------------------------------------------


def test_watchdog_emits_stall_event():
    with recording() as rec:
        wd = Watchdog(0.01, what="test-loop")
        wd.note_progress(1)
        time.sleep(0.05)
        with pytest.raises(WatchdogTimeout):
            wd.check()
        stalls = [e for e in rec.events.snapshot() if e.type == "watchdog.stall"]
    assert stalls and stalls[0].data["what"] == "test-loop"
    assert stalls[0].data["stalled_s"] >= 0.01


# -- causal_edges unit behaviour ---------------------------------------------


def test_causal_edges_detects_duplicates_and_orphans():
    ok = causal_edges([
        Span("a", "c", 0.0, 1.0, span_id=1),
        Span("b", "c", 0.0, 1.0, span_id=2, parent_id=1),
        Span("legacy", "c", 0.0, 1.0),  # id 0: skipped
    ])
    assert ok == {1: None, 2: 1}
    with pytest.raises(TraceError, match="duplicate span id"):
        causal_edges([Span("a", "c", 0, 1, span_id=1),
                      Span("b", "c", 0, 1, span_id=1)])
    with pytest.raises(TraceError, match="absent"):
        causal_edges([Span("a", "c", 0, 1, span_id=2, parent_id=7)])


# -- monitor CLI -------------------------------------------------------------


@pytest.fixture()
def metrics_run(tmp_path):
    a = np.random.default_rng(9).standard_normal((M, N))
    metrics = tmp_path / "metrics.jsonl"
    events = tmp_path / "events.jsonl"
    f = qr_factor(a, nb=NB, ib=IB, metrics=metrics, events=events)
    return f, metrics, events


def test_monitor_summary_cli(metrics_run, capsys):
    _, metrics, _ = metrics_run
    assert obs_monitor.main([str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "samples over" in out and "ops.total" in out


def test_monitor_summary_missing_file(tmp_path, capsys):
    assert obs_monitor.main([str(tmp_path / "nope.jsonl")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_monitor_follow_tails_until_timeout(metrics_run, capsys):
    _, metrics, _ = metrics_run
    assert obs_monitor.main([str(metrics), "--follow", "--timeout", "0.2"]) == 0
    out = capsys.readouterr().out
    assert out.count("t=") >= 1


def test_monitor_dashboard_cli(metrics_run, capsys):
    f, metrics, events = metrics_run
    rc = obs_monitor.main(
        [str(metrics), "--dashboard", "--events", str(events)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert f"run {f.run_id}" in out
    assert "run.end" in out  # event tail rendered


def test_monitor_dashboard_follow_exits_on_timeout(metrics_run):
    _, metrics, events = metrics_run
    rc = obs_monitor.main([
        str(metrics), "--dashboard", "--events", str(events),
        "--follow", "--timeout", "0.2",
    ])
    assert rc == 0


def test_monitor_events_requires_dashboard(metrics_run, capsys):
    _, metrics, events = metrics_run
    with pytest.raises(SystemExit):
        obs_monitor.main([str(metrics), "--events", str(events)])


def test_render_dashboard_is_pure():
    samples = [
        {"t": 0.0, "run": "r-9", "counters": {"ops.total": 0.0},
         "gauges": {"parallel.workers_alive": 2}, "rates": {}},
        {"t": 1.0, "run": "r-9", "counters": {"ops.total": 17.0},
         "gauges": {"parallel.workers_alive": 2},
         "rates": {"ops.total/s": 17.0}},
    ]
    events = [{"t": 0.5, "type": "worker.dead", "run": "r-9", "worker": 1,
               "exit_code": 9}]
    out = obs_monitor.render_dashboard(samples, events)
    assert "run r-9" in out and "parallel.workers_alive" in out
    assert "worker.dead" in out and "exit_code=9" in out
    assert obs_monitor.render_dashboard([]) == "no samples yet"


# -- sampler robustness ------------------------------------------------------


def test_sampler_samples_carry_run_id(tmp_path):
    path = tmp_path / "m.jsonl"
    with recording() as rec:
        with MetricsSampler(rec, path, interval=10.0):
            rec.count("ops.total", 5)
    samples = [json.loads(line) for line in path.read_text().splitlines()]
    assert all(s["run"] == rec.run_id for s in samples)


def test_sampler_flushes_on_abnormal_exit(tmp_path):
    """An exception that skips sampler.stop() still yields a closed,
    final-sample-bearing metrics file (the atexit safety net)."""
    path = tmp_path / "m.jsonl"
    code = (
        "import sys; sys.path.insert(0, {src!r})\n"
        "from repro.obs import recording, MetricsSampler\n"
        "rec = recording().__enter__()\n"
        "sampler = MetricsSampler(rec, {path!r}, interval=60.0).start()\n"
        "rec.count('ops.total', 7)\n"
        "raise SystemExit(3)\n"
    ).format(src="src", path=str(path))
    proc = subprocess.run([sys.executable, "-c", code], cwd=str(
        __import__("pathlib").Path(__file__).resolve().parent.parent
    ))
    assert proc.returncode == 3
    samples = [json.loads(line) for line in path.read_text().splitlines()]
    # one sample at start() plus the atexit-driven final one
    assert len(samples) >= 2
    assert samples[-1]["counters"]["ops.total"] == 7.0


def test_sampler_thread_survives_a_raising_gauge(tmp_path):
    path = tmp_path / "m.jsonl"
    with recording() as rec:
        rec.register_gauge("bad.gauge", lambda: 1 / 0)
        with MetricsSampler(rec, path, interval=0.01) as sampler:
            time.sleep(0.05)
            rec.unregister_gauge("bad.gauge")
            rec.register_gauge("good.gauge", lambda: 4.0)
            time.sleep(0.05)
        assert sampler.n_samples >= 2  # thread kept running after the error
    samples = [json.loads(line) for line in path.read_text().splitlines()]
    assert samples[-1]["gauges"].get("good.gauge") == 4.0


# -- registry primitives -----------------------------------------------------


def test_build_record_and_find_prefix(tmp_path):
    reg = RunRegistry(tmp_path / "r.jsonl")
    rec = build_record(
        run_id="20260101T000000-1.0-aaaa", backend="serial",
        geometry={"m": M, "n": N, "nb": NB, "ib": IB}, wall_s=0.25,
        counters={"ops.total": 17}, status="ok",
    )
    reg.append(rec)
    reg.append({**rec, "run": "20260101T000000-1.1-bbbb"})
    assert reg.find("20260101T000000-1.0")["run"].endswith("aaaa")
    with pytest.raises(ConfigurationError, match="ambiguous"):
        reg.find("20260101")
    with pytest.raises(ConfigurationError, match="no run matching"):
        reg.find("zzz")
    with pytest.raises(ConfigurationError, match="'run' id"):
        reg.append({"backend": "serial"})


def test_registry_bench_key_registered():
    from repro.perf.bench import TIME_KEYS

    assert "telemetry_off_s" in TIME_KEYS
