"""Unit tests for tile layout, storage, and generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tiles import (
    TileLayout,
    TileMatrix,
    graded_conditioned,
    least_squares_problem,
    random_dense,
    random_tall_skinny,
)
from repro.util import ConfigurationError, ShapeError


class TestTileLayout:
    def test_exact_division(self):
        lo = TileLayout(40, 24, 8)
        assert (lo.mt, lo.nt) == (5, 3)
        assert lo.tile_rows(4) == 8
        assert lo.tile_cols(2) == 8

    def test_ragged_edges(self):
        lo = TileLayout(37, 21, 8)
        assert (lo.mt, lo.nt) == (5, 3)
        assert lo.tile_rows(4) == 5
        assert lo.tile_cols(2) == 5
        assert lo.tile_shape(4, 2) == (5, 5)

    def test_spans_cover_matrix(self):
        lo = TileLayout(37, 21, 8)
        rows = sum(lo.tile_rows(i) for i in range(lo.mt))
        cols = sum(lo.tile_cols(j) for j in range(lo.nt))
        assert (rows, cols) == (37, 21)

    def test_row_span(self):
        lo = TileLayout(20, 10, 8)
        assert lo.row_span(2) == slice(16, 20)
        assert lo.col_span(1) == slice(8, 10)

    def test_tiles_enumeration(self):
        lo = TileLayout(16, 16, 8)
        assert lo.tiles() == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_out_of_range(self):
        lo = TileLayout(16, 16, 8)
        with pytest.raises(ConfigurationError):
            lo.tile_rows(2)
        with pytest.raises(ConfigurationError):
            lo.tile_cols(-1)

    def test_nbytes(self):
        assert TileLayout(10, 10, 4).nbytes() == 800

    def test_single_tile(self):
        lo = TileLayout(5, 5, 8)
        assert (lo.mt, lo.nt) == (1, 1)
        assert lo.tile_shape(0, 0) == (5, 5)


class TestTileMatrix:
    def test_roundtrip(self, rng):
        a = rng.standard_normal((37, 21))
        tm = TileMatrix.from_dense(a, 8)
        np.testing.assert_array_equal(tm.to_dense(), a)

    def test_from_dense_copies(self, rng):
        """Regression: full-width tiles must not alias the input array."""
        a = rng.standard_normal((16, 8))  # tiles span full rows
        tm = TileMatrix.from_dense(a, 8)
        tm.tile(0, 0)[0, 0] = 999.0
        assert a[0, 0] != 999.0

    def test_set_tile_copies(self, rng):
        tm = TileMatrix.zeros(16, 8, 8)
        block = rng.standard_normal((8, 8))
        tm.set_tile(1, 0, block)
        block[0, 0] = 123.0
        assert tm.tile(1, 0)[0, 0] != 123.0

    def test_set_tile_shape_check(self):
        tm = TileMatrix.zeros(16, 8, 8)
        with pytest.raises(ShapeError):
            tm.set_tile(0, 0, np.zeros((4, 4)))

    def test_zeros(self):
        tm = TileMatrix.zeros(10, 6, 4)
        assert tm.norm_fro() == 0.0
        assert tm.to_dense().shape == (10, 6)

    def test_norm_fro_matches_numpy(self, rng):
        a = rng.standard_normal((20, 12))
        tm = TileMatrix.from_dense(a, 8)
        assert tm.norm_fro() == pytest.approx(np.linalg.norm(a))

    def test_copy_is_deep(self, rng):
        tm = TileMatrix.from_dense(rng.standard_normal((16, 8)), 8)
        cp = tm.copy()
        cp.tile(0, 0)[0, 0] = 7.0
        assert tm.tile(0, 0)[0, 0] != 7.0

    def test_iter_tiles_order(self):
        tm = TileMatrix.zeros(16, 16, 8)
        coords = [(i, j) for i, j, _ in tm.iter_tiles()]
        assert coords == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_upper_triangular_extracts_r(self, rng):
        a = rng.standard_normal((24, 16))
        tm = TileMatrix.from_dense(a, 8)
        r = tm.upper_triangular()
        assert r.shape == (16, 16)
        np.testing.assert_array_equal(r, np.triu(r))
        # Entries of the strictly-upper tiles must be preserved verbatim.
        assert r[0, 15] == a[0, 15]

    def test_grid_shape_validation(self):
        lo = TileLayout(16, 8, 8)
        with pytest.raises(ConfigurationError):
            TileMatrix(lo, [[np.zeros((8, 8))]])  # wrong row count


class TestGenerators:
    def test_random_dense_deterministic(self):
        np.testing.assert_array_equal(random_dense(5, 3, seed=1), random_dense(5, 3, seed=1))

    def test_random_dense_range(self):
        a = random_dense(50, 20, seed=2)
        assert np.all(a >= -1.0) and np.all(a <= 1.0)

    def test_random_tall_skinny_requires_tall(self):
        with pytest.raises(ConfigurationError):
            random_tall_skinny(5, 10, 4)

    def test_random_tall_skinny_shape(self):
        tm = random_tall_skinny(24, 8, 8, seed=0)
        assert (tm.m, tm.n, tm.nb) == (24, 8, 8)

    def test_graded_conditioned_condition_number(self):
        a = graded_conditioned(60, 10, cond=1e6, seed=3)
        s = np.linalg.svd(a, compute_uv=False)
        assert s[0] / s[-1] == pytest.approx(1e6, rel=1e-6)

    def test_graded_conditioned_validation(self):
        with pytest.raises(ConfigurationError):
            graded_conditioned(10, 20, cond=10.0)
        with pytest.raises(ConfigurationError):
            graded_conditioned(20, 10, cond=0.5)

    def test_least_squares_problem_planted_solution(self):
        a, b, x = least_squares_problem(200, 10, noise=0.0, seed=4)
        np.testing.assert_allclose(a @ x, b)

    def test_least_squares_problem_noise(self):
        a, b, x = least_squares_problem(200, 10, noise=1e-3, seed=4)
        resid = np.linalg.norm(a @ x - b)
        assert 0.0 < resid < 1.0
