"""Unit tests for reduction-tree plans and their statistics."""

from __future__ import annotations

import pytest

from repro.trees import (
    Elimination,
    PanelPlan,
    TreeKind,
    plan_all_panels,
    plan_panel,
    summarize_plans,
)
from repro.util import ConfigurationError, ScheduleError


class TestTreeKind:
    def test_coerce_strings(self):
        assert TreeKind.coerce("flat") is TreeKind.FLAT
        assert TreeKind.coerce("HIER") is TreeKind.HIER
        assert TreeKind.coerce(TreeKind.BINARY) is TreeKind.BINARY

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ScheduleError, match="unknown tree kind"):
            TreeKind.coerce("fibonacci")


class TestElimination:
    def test_rejects_self_elimination(self):
        with pytest.raises(ConfigurationError):
            Elimination("TS", 3, 3)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            Elimination("XX", 0, 1)


class TestFlatTree:
    def test_structure(self):
        p = plan_panel("flat", 0, 6)
        assert p.geqrt_rows == [0]
        assert [(e.piv, e.row) for e in p.eliminations] == [(0, r) for r in range(1, 6)]
        assert all(e.kind == "TS" for e in p.eliminations)

    def test_critical_path_is_linear(self):
        assert plan_panel("flat", 0, 9).critical_path_length() == 8

    def test_later_panel(self):
        p = plan_panel("flat", 3, 6)
        assert p.rows == [3, 4, 5]
        assert p.pivot == 3


class TestBinaryTree:
    def test_all_rows_factored(self):
        p = plan_panel("binary", 0, 8)
        assert p.geqrt_rows == list(range(8))
        assert all(e.kind == "TT" for e in p.eliminations)

    def test_logarithmic_depth(self):
        assert plan_panel("binary", 0, 8).critical_path_length() == 3
        assert plan_panel("binary", 0, 16).critical_path_length() == 4

    def test_non_power_of_two(self):
        p = plan_panel("binary", 0, 7)
        p.validate()
        assert len(p.eliminations) == 6
        assert p.critical_path_length() == 3

    def test_levels_increase(self):
        p = plan_panel("binary", 0, 8)
        levels = [e.level for e in p.eliminations]
        assert levels == sorted(levels)
        assert max(levels) == 3

    def test_single_row_panel(self):
        p = plan_panel("binary", 5, 6)
        assert p.eliminations == []
        assert p.geqrt_rows == [5]


class TestGreedyTree:
    def test_valid_and_logarithmic(self):
        p = plan_panel("greedy", 0, 12)
        p.validate()
        assert p.critical_path_length() <= 5

    def test_fold_pairing(self):
        p = plan_panel("greedy", 0, 8)
        first_round = [e for e in p.eliminations if e.level == 1]
        assert [(e.piv, e.row) for e in first_round] == [(0, 4), (1, 5), (2, 6), (3, 7)]


class TestHierarchicalTree:
    def test_domains_shifted(self):
        p = plan_panel("hier", 1, 10, h=3, shifted=True)
        assert p.domains == [[1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_domains_fixed(self):
        p = plan_panel("hier", 1, 10, h=3, shifted=False)
        # Fixed boundaries align to absolute multiples of h: first domain
        # is the partial one.
        assert p.domains == [[1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_boundary_shifts_per_panel(self):
        d0 = plan_panel("hier", 0, 12, h=4, shifted=True).domains[0]
        d1 = plan_panel("hier", 1, 12, h=4, shifted=True).domains[0]
        assert d0 == [0, 1, 2, 3] and d1 == [1, 2, 3, 4]

    def test_heads_get_geqrt(self):
        p = plan_panel("hier", 0, 12, h=4)
        assert p.geqrt_rows == [0, 4, 8]

    def test_ts_within_domain_tt_across(self):
        p = plan_panel("hier", 0, 12, h=4)
        ts = [e for e in p.eliminations if e.kind == "TS"]
        tt = [e for e in p.eliminations if e.kind == "TT"]
        assert len(ts) == 9 and len(tt) == 2
        assert {e.piv for e in tt} <= set(p.geqrt_rows)

    def test_depth_between_flat_and_binary(self):
        mt = 64
        flat = plan_panel("flat", 0, mt).critical_path_length()
        binary = plan_panel("binary", 0, mt).critical_path_length()
        hier = plan_panel("hier", 0, mt, h=8).critical_path_length()
        assert binary < hier < flat

    def test_h_larger_than_panel_degenerates_to_flat(self):
        p = plan_panel("hier", 0, 5, h=100)
        assert len(p.domains) == 1
        assert all(e.kind == "TS" for e in p.eliminations)


class TestValidation:
    def test_plan_validate_catches_double_elimination(self):
        p = PanelPlan(
            j=0,
            rows=[0, 1, 2],
            geqrt_rows=[0],
            eliminations=[Elimination("TS", 0, 1), Elimination("TS", 0, 1)],
        )
        with pytest.raises(ScheduleError, match="eliminated twice"):
            p.validate()

    def test_plan_validate_catches_missing_row(self):
        p = PanelPlan(j=0, rows=[0, 1, 2], geqrt_rows=[0], eliminations=[Elimination("TS", 0, 1)])
        with pytest.raises(ScheduleError, match="never eliminated"):
            p.validate()

    def test_plan_validate_catches_tt_on_full_tile(self):
        p = PanelPlan(
            j=0,
            rows=[0, 1],
            geqrt_rows=[0],
            eliminations=[Elimination("TT", 0, 1)],
        )
        with pytest.raises(ScheduleError, match="TT elimination of full tile"):
            p.validate()

    def test_plan_validate_catches_ts_on_triangular_tile(self):
        p = PanelPlan(
            j=0,
            rows=[0, 1],
            geqrt_rows=[0, 1],
            eliminations=[Elimination("TS", 0, 1)],
        )
        with pytest.raises(ScheduleError, match="TS elimination of triangular"):
            p.validate()

    def test_plan_panel_range_checks(self):
        with pytest.raises(ConfigurationError):
            plan_panel("flat", 6, 6)
        with pytest.raises(ConfigurationError):
            plan_panel("hier", 0, 6, h=0)


class TestPlanAll:
    def test_covers_all_panels(self):
        plans = plan_all_panels("hier", 10, 4, h=3)
        assert [p.j for p in plans] == [0, 1, 2, 3]

    def test_square_matrix_panel_count(self):
        assert len(plan_all_panels("flat", 4, 4)) == 4

    def test_summary_counts(self):
        plans = plan_all_panels("hier", 12, 3, h=4)
        stats = summarize_plans(plans)
        assert stats.panels == 3
        assert stats.eliminations == stats.ts + stats.tt
        # Every non-pivot row of every panel is eliminated exactly once.
        assert stats.eliminations == sum(len(p.rows) - 1 for p in plans)
        assert stats.geqrt == sum(len(p.geqrt_rows) for p in plans)

    def test_summary_depth_ordering(self):
        mt, nt = 32, 4
        flat = summarize_plans(plan_all_panels("flat", mt, nt))
        binary = summarize_plans(plan_all_panels("binary", mt, nt))
        assert binary.max_depth < flat.max_depth
        assert binary.max_parallel_elims > flat.max_parallel_elims
