"""Property-based tests for tree plans: validity for arbitrary shapes."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.trees import TreeKind, plan_panel, plan_all_panels

SETTINGS = dict(max_examples=60, deadline=None)

kinds = st.sampled_from([k.value for k in TreeKind])


@settings(**SETTINGS)
@given(
    kind=kinds,
    mt=st.integers(1, 60),
    h=st.integers(1, 12),
    shifted=st.booleans(),
    data=st.data(),
)
def test_every_panel_plan_is_valid(kind, mt, h, shifted, data):
    j = data.draw(st.integers(0, mt - 1))
    plan = plan_panel(kind, j, mt, h=h, shifted=shifted)
    plan.validate()  # raises on any violated invariant
    # Rows are exactly j..mt-1 and the pivot survives.
    assert plan.rows == list(range(j, mt))
    assert plan.pivot == j
    # Elimination count is exact: every non-pivot row goes once.
    assert len(plan.eliminations) == mt - j - 1


@settings(**SETTINGS)
@given(kind=kinds, mt=st.integers(2, 40), h=st.integers(1, 8), shifted=st.booleans())
def test_depth_bounds(kind, mt, h, shifted):
    plan = plan_panel(kind, 0, mt, h=h, shifted=shifted)
    depth = plan.critical_path_length()
    # Depth is bounded below by the information-theoretic log bound and
    # above by the serial chain.
    assert depth <= mt - 1
    assert (1 << depth) >= mt  # 2^depth >= number of rows reduced


@settings(**SETTINGS)
@given(
    kind=kinds,
    mt=st.integers(1, 30),
    nt=st.integers(1, 8),
    h=st.integers(1, 6),
)
def test_plan_all_panels_consistency(kind, mt, nt, h):
    plans = plan_all_panels(kind, mt, nt, h=h)
    assert len(plans) == min(mt, nt)
    for p in plans:
        # Domains partition the rows in order.
        flattened = [r for dom in p.domains for r in dom]
        assert flattened == p.rows


@settings(**SETTINGS)
@given(mt=st.integers(2, 60), h=st.integers(1, 10))
def test_hier_shifted_first_domain_full(mt, h):
    """Shifted boundaries: every domain has h rows except the last."""
    plan = plan_panel("hier", 0, mt, h=h, shifted=True)
    sizes = [len(d) for d in plan.domains]
    assert all(s == h for s in sizes[:-1])
    assert 1 <= sizes[-1] <= h


@settings(**SETTINGS)
@given(mt=st.integers(2, 60), h=st.integers(1, 10), j=st.integers(0, 20))
def test_hier_fixed_boundaries_absolute(mt, h, j):
    """Fixed boundaries: interior domain edges sit at multiples of h."""
    if j >= mt:
        j = mt - 1
    plan = plan_panel("hier", j, mt, h=h, shifted=False)
    for dom in plan.domains[1:]:
        assert dom[0] % h == 0
