"""Unit tests for :mod:`repro.util` (errors, rng, validation, formatting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import (
    ChannelClosedError,
    ChannelDisabledError,
    ChannelError,
    ConfigurationError,
    DeadlockError,
    NetworkError,
    ReproError,
    ScheduleError,
    ShapeError,
    SimulationError,
    TagError,
    ascii_gantt,
    as_f64_matrix,
    check_fraction,
    check_nonnegative_int,
    check_positive,
    check_positive_int,
    check_tile_params,
    format_bytes,
    format_seconds,
    format_si,
    format_table,
    make_rng,
    require,
    spawn_rngs,
)


class TestErrors:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            ShapeError,
            ChannelError,
            ChannelClosedError,
            ChannelDisabledError,
            NetworkError,
            TagError,
            ScheduleError,
            SimulationError,
            DeadlockError,
        ):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        # API users catching ValueError for bad params should succeed.
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(ShapeError, ValueError)

    def test_tag_error_is_network_error(self):
        assert issubclass(TagError, NetworkError)

    def test_deadlock_is_simulation_error(self):
        assert issubclass(DeadlockError, SimulationError)


class TestRng:
    def test_default_seed_deterministic(self):
        assert make_rng().integers(1 << 30) == make_rng().integers(1 << 30)

    def test_int_seed(self):
        assert make_rng(7).integers(1 << 30) == make_rng(7).integers(1 << 30)
        assert make_rng(7).integers(1 << 30) != make_rng(8).integers(1 << 30)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_spawn_independent_streams(self):
        a, b = spawn_rngs(3, 2)
        assert a.integers(1 << 30) != b.integers(1 << 30)

    def test_spawn_deterministic(self):
        x = [g.integers(1 << 30) for g in spawn_rngs(5, 3)]
        y = [g.integers(1 << 30) for g in spawn_rngs(5, 3)]
        assert x == y


class TestValidation:
    def test_require_raises(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")
        require(True, "fine")

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "x", None, True])
    def test_check_positive_int_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive_int(bad, "v")

    def test_check_positive_int_accepts_numpy(self):
        assert check_positive_int(np.int64(5), "v") == 5

    def test_check_nonnegative_int(self):
        assert check_nonnegative_int(0, "v") == 0
        with pytest.raises(ConfigurationError):
            check_nonnegative_int(-1, "v")

    @pytest.mark.parametrize("bad", [0.0, -2.0, float("nan"), float("inf"), "x"])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive(bad, "v")

    def test_check_fraction(self):
        assert check_fraction(0.5, "v") == 0.5
        assert check_fraction(1.0, "v") == 1.0
        with pytest.raises(ConfigurationError):
            check_fraction(1.5, "v")

    def test_as_f64_matrix_coerces(self):
        out = as_f64_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_as_f64_matrix_rejects_1d_and_empty(self):
        with pytest.raises(ShapeError):
            as_f64_matrix(np.zeros(3))
        with pytest.raises(ShapeError):
            as_f64_matrix(np.zeros((0, 3)))

    def test_check_tile_params(self):
        check_tile_params(100, 50, 16, 4)
        with pytest.raises(ConfigurationError):
            check_tile_params(100, 50, 16, 5)  # ib does not divide nb
        with pytest.raises(ConfigurationError):
            check_tile_params(100, 50, 4, 16)  # ib > nb


class TestFormatting:
    def test_format_si(self):
        assert format_si(11.2e12, "flop/s") == "11.20 Tflop/s"
        assert format_si(9.5e9, "flop/s") == "9.50 Gflop/s"
        assert format_si(3.0, "x") == "3.00 x"

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert "GiB" in format_bytes(3 * 1024**3)

    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(0.0025) == "2.500 ms"
        assert format_seconds(2.5e-6) == "2.5 us"

    def test_format_table_alignment(self):
        txt = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = txt.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[1]

    def test_ascii_gantt_renders(self):
        out = ascii_gantt([[(0.0, 1.0, "F")], [(0.5, 2.0, "B")]], width=20)
        assert "F" in out and "B" in out

    def test_ascii_gantt_empty(self):
        assert ascii_gantt([]) == "(empty trace)"
