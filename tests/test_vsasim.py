"""Tests for the virtual-time VSA executor (runtime-in-the-loop DES)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dessim.vsasim import simulate_vsa
from repro.machine import kraken
from repro.pulsar import VDP, VSA, Packet
from repro.qr import assemble_factors, build_qr_vsa, expand_plans, qr_factor
from repro.qr.costs import make_qr_cost_fn
from repro.tiles import TileMatrix, random_dense
from repro.trees import plan_all_panels
from repro.util import DeadlockError

MACH = kraken()


def build_chain(n: int, cost: float):
    """source -> relay -> ... -> sink, all unit-cost firings."""
    vsa = VSA()
    vsa.add_vdp(VDP((0,), 1, lambda v: v.write(0, Packet.of(1)), n_out=1))
    for s in range(1, n - 1):
        vsa.add_vdp(VDP((s,), 1, lambda v: v.write(0, v.read(0)), n_in=1, n_out=1))
    vsa.add_vdp(VDP((n - 1,), 1, lambda v: v.read(0), n_in=1))
    for s in range(n - 1):
        vsa.connect((s,), 0, (s + 1,), 0, 64)
    return vsa


class TestVirtualTimeSemantics:
    def test_serial_chain_makespan(self):
        mach = MACH.with_overrides(task_overhead_s=0.0)
        res = simulate_vsa(
            build_chain(5, 1.0),
            mapping=lambda t: t[0] % 2,
            machine=mach,
            total_workers=2,
            cost_fn=lambda v: 1.0,
        )
        assert res.firings == 5
        # Same-node pushes arrive at firing end: 5 sequential firings.
        assert res.makespan == pytest.approx(5.0)

    def test_task_overhead_charged(self):
        mach = MACH.with_overrides(task_overhead_s=0.5)
        res = simulate_vsa(
            build_chain(4, 1.0),
            mapping=lambda t: 0,
            machine=mach,
            total_workers=1,
            cost_fn=lambda v: 1.0,
        )
        assert res.makespan == pytest.approx(6.0)

    def test_cross_node_pays_wire_time(self):
        mach = MACH.with_overrides(task_overhead_s=0.0)
        workers = mach.workers_per_node
        local = simulate_vsa(
            build_chain(3, 1.0),
            mapping=lambda t: 0,
            machine=mach,
            total_workers=workers,
            cost_fn=lambda v: 1.0,
        )
        # Middle VDP on the second node: both hops cross the wire.
        remote = simulate_vsa(
            build_chain(3, 1.0),
            mapping=lambda t: workers if t[0] == 1 else 0,
            machine=mach,
            total_workers=2 * workers,
            cost_fn=lambda v: 1.0,
        )
        assert remote.messages == 2
        assert remote.makespan > local.makespan
        assert remote.makespan == pytest.approx(
            local.makespan + 2 * mach.wire_seconds(64), rel=1e-6
        )

    def test_forward_stamps_at_start(self):
        """By-pass relays release packets before their firing completes."""
        mach = MACH.with_overrides(task_overhead_s=0.0)

        def relay_forward(v):
            v.forward(0, 0)

        def relay_slow(v):
            v.write(0, v.read(0))

        def build(relay):
            vsa = VSA()
            vsa.add_vdp(VDP((0,), 1, lambda v: v.write(0, Packet.of(1)), n_out=1))
            vsa.add_vdp(VDP((1,), 1, relay, n_in=1, n_out=1))
            vsa.add_vdp(VDP((2,), 1, lambda v: v.read(0), n_in=1))
            vsa.connect((0,), 0, (1,), 0, 64)
            vsa.connect((1,), 0, (2,), 0, 64)
            return vsa

        kw = dict(mapping=lambda t: t[0], machine=mach, total_workers=3,
                  cost_fn=lambda v: 1.0)
        with_bypass = simulate_vsa(build(relay_forward), **kw)
        without = simulate_vsa(build(relay_slow), **kw)
        # With by-pass the sink overlaps the relay's compute.
        assert with_bypass.makespan < without.makespan
        assert with_bypass.makespan == pytest.approx(2.0 + mach.forward_overhead_s)
        assert without.makespan == pytest.approx(3.0)

    def test_deadlock_detected(self):
        vsa = VSA()
        vsa.add_vdp(VDP((0,), 1, lambda v: v.read(0), n_in=1, n_out=1))
        vsa.add_vdp(VDP((1,), 1, lambda v: v.read(0), n_in=1, n_out=1))
        vsa.connect((0,), 0, (1,), 0, 64)
        vsa.connect((1,), 0, (0,), 0, 64)
        with pytest.raises(DeadlockError):
            simulate_vsa(
                vsa, mapping=lambda t: 0, machine=MACH, total_workers=1,
                cost_fn=lambda v: 1.0,
            )

    def test_busy_and_utilization(self):
        res = simulate_vsa(
            build_chain(4, 1.0),
            mapping=lambda t: 0,
            machine=MACH.with_overrides(task_overhead_s=0.0),
            total_workers=1,
            cost_fn=lambda v: 1.0,
        )
        assert res.utilization(1) == pytest.approx(1.0)


class TestQRUnderVirtualTime:
    """Run the real 3D QR array in virtual time: numerics AND timing."""

    def run_qr(self, tree: str, workers=8, policy="lazy", m=48, machine=MACH):
        a0 = random_dense(m, 24, seed=60)
        tm = TileMatrix.from_dense(a0, 8)
        plans = plan_all_panels(tree, tm.mt, tm.nt, h=3)
        arr = build_qr_vsa(tm, plans, ib=4, total_workers=workers)
        cost = make_qr_cost_fn(tm.layout, machine, 4)
        res = simulate_vsa(
            arr.vsa,
            mapping=arr.mapping,
            machine=machine,
            total_workers=workers,
            cost_fn=cost,
            policy=policy,
        )
        ops = expand_plans(tm.layout, plans)
        factors = assemble_factors(arr.store, ops, 4)
        return a0, res, factors

    @pytest.mark.parametrize("tree", ["flat", "binary", "hier"])
    def test_factors_bit_identical_to_serial(self, tree):
        a0, res, factors = self.run_qr(tree)
        ser = qr_factor(a0, nb=8, ib=4, tree=tree, h=3)
        np.testing.assert_array_equal(ser.R, factors.r_factor())
        assert res.makespan > 0.0

    def test_flat_slower_than_hier_in_virtual_time(self):
        """On a genuinely tall panel stack the flat tree's serial panel
        chain dominates; the hierarchical tree pipelines past it.

        Runtime overheads are zeroed so the 8x8 test tiles sit in the same
        kernel-bound regime as the paper's 192x192 production tiles (where
        a kernel is ~1000x the per-firing overhead).
        """
        mach = MACH.with_overrides(
            task_overhead_s=0.0, forward_overhead_s=1e-12, latency_s=1e-12,
            message_overhead_s=0.0,
        )
        _, flat, _ = self.run_qr("flat", workers=64, m=384, machine=mach)
        _, hier, _ = self.run_qr("hier", workers=64, m=384, machine=mach)
        assert hier.makespan < flat.makespan

    def test_policies_same_numerics(self):
        _, _, f_lazy = self.run_qr("hier", policy="lazy")
        _, _, f_aggr = self.run_qr("hier", policy="aggressive")
        np.testing.assert_array_equal(f_lazy.r_factor(), f_aggr.r_factor())

    def test_trace_recording(self):
        a0 = random_dense(24, 16, seed=61)
        tm = TileMatrix.from_dense(a0, 8)
        plans = plan_all_panels("hier", tm.mt, tm.nt, h=2)
        arr = build_qr_vsa(tm, plans, ib=4, total_workers=4)
        res = simulate_vsa(
            arr.vsa,
            mapping=arr.mapping,
            machine=MACH,
            total_workers=4,
            cost_fn=make_qr_cost_fn(tm.layout, MACH, 4),
            record_trace=True,
        )
        assert res.trace is not None and len(res.trace) == res.firings
        # Trace intervals on one worker never overlap.
        by_worker: dict[int, list[tuple[float, float]]] = {}
        for w, s, e, _tup in res.trace:
            by_worker.setdefault(w, []).append((s, e))
        for spans in by_worker.values():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2 + 1e-12


class TestDominoUnderVirtualTime:
    def test_domino_virtual_run(self):
        from repro.qr.domino import build_domino_vsa

        a0 = random_dense(40, 24, seed=62)
        tm = TileMatrix.from_dense(a0, 8)
        arr = build_domino_vsa(tm, ib=4, total_workers=6)
        res = simulate_vsa(
            arr.vsa,
            mapping=arr.mapping,
            machine=MACH,
            total_workers=6,
            cost_fn=make_qr_cost_fn(tm.layout, MACH, 4),
        )
        plans = plan_all_panels("flat", tm.mt, tm.nt)
        factors = assemble_factors(arr.store, expand_plans(tm.layout, plans), 4)
        ser = qr_factor(a0, nb=8, ib=4, tree="flat")
        np.testing.assert_array_equal(ser.R, factors.r_factor())
        assert res.makespan > 0 and res.firings > 0
