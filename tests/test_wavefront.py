"""Wavefront partition correctness and the batched backends' bit-exactness.

The Hypothesis property pins the schedule contract of
:func:`repro.qr.wavefront.compute_wavefronts` over random tree/grid
configurations: the wavefronts are a *partition* of the op list (every op
exactly once), no wavefront contains two ops touching the same tile, and
concatenating the wavefronts respects every dependency edge — together,
a legal schedule.  The backend tests then assert the payoff: factors from
``backend="batched"`` and from ``backend="parallel", batch="wavefront"``
are bit-identical to the serial reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import qr_factor
from repro.qr.dag import op_dependency_graph
from repro.qr.ops import expand_plans
from repro.qr.wavefront import compute_wavefronts, op_levels, wavefront_stats
from repro.tiles import TileMatrix
from repro.trees import plan_all_panels

SETTINGS = dict(max_examples=40, deadline=None)
TREES = ("flat", "binary", "hier", "greedy")


def _ops_for(mt: int, nt: int, tree: str, h: int, shifted: bool):
    layout = TileMatrix.from_dense(np.zeros((mt * 4, nt * 4)), 4).layout
    plans = plan_all_panels(tree, mt, nt, h=h, shifted=shifted)
    return expand_plans(layout, plans)


@settings(**SETTINGS)
@given(
    mt=st.integers(1, 10),
    nt=st.integers(1, 4),
    tree=st.sampled_from(TREES),
    h=st.integers(1, 4),
    shifted=st.booleans(),
)
def test_wavefronts_are_a_valid_schedule(mt, nt, tree, h, shifted):
    nt = min(nt, mt)  # tall-skinny: mt >= nt
    ops = _ops_for(mt, nt, tree, h, shifted)
    wfs = compute_wavefronts(ops)

    # Partition: every op index appears exactly once.
    flat = [idx for wf in wfs for idx in wf]
    assert sorted(flat) == list(range(len(ops)))

    # Tile-disjointness inside each wavefront.
    wf_of = {}
    for wi, wf in enumerate(wfs):
        touched: set = set()
        for idx in wf:
            wf_of[idx] = wi
            tiles = set(ops[idx].reads()) | set(ops[idx].writes())
            assert not (touched & tiles), "wavefront shares a tile"
            touched |= tiles

    # Concatenation respects every DAG edge.
    g = op_dependency_graph(ops)
    for u in range(g.n_tasks):
        for e in range(g.succ_index[u], g.succ_index[u + 1]):
            assert wf_of[int(g.succ_task[e])] > wf_of[u]


def test_op_levels_monotone_along_edges():
    ops = _ops_for(6, 3, "hier", 2, True)
    level = op_levels(ops)
    g = op_dependency_graph(ops)
    for u in range(g.n_tasks):
        for e in range(g.succ_index[u], g.succ_index[u + 1]):
            assert level[int(g.succ_task[e])] > level[u]


def test_wavefront_stats_fields():
    ops = _ops_for(8, 2, "hier", 2, True)
    stats = wavefront_stats(ops)
    assert stats["n_ops"] == len(ops)
    assert stats["n_wavefronts"] >= 1
    assert 0.0 < stats["mean_width"] <= stats["max_width"]
    assert 0.0 <= stats["batched_fraction"] <= 1.0
    # A wide tree on a tall grid must actually batch something.
    assert stats["batched_fraction"] > 0.0


def _assert_bit_identical(f_ref, f_new):
    np.testing.assert_array_equal(f_ref.R, f_new.R)
    np.testing.assert_array_equal(f_ref.q_thin(), f_new.q_thin())
    recs_ref, recs_new = f_ref._factors.records, f_new._factors.records
    assert len(recs_ref) == len(recs_new)
    for r1, r2 in zip(recs_ref, recs_new):
        assert (r1.kind, r1.i, r1.k2, r1.j) == (r2.kind, r2.i, r2.k2, r2.j)
        np.testing.assert_array_equal(r1.t, r2.t)


@pytest.mark.parametrize("tree", TREES)
def test_batched_backend_bit_identical(tree, small_matrix):
    ser = qr_factor(small_matrix, nb=8, ib=4, tree=tree, h=3, backend="serial")
    bat = qr_factor(small_matrix, nb=8, ib=4, tree=tree, h=3, backend="batched")
    _assert_bit_identical(ser, bat)


def test_batched_backend_ragged_tiles():
    a = np.random.default_rng(5).standard_normal((90, 25))
    ser = qr_factor(a, nb=12, ib=4, tree="hier", h=2, backend="serial")
    bat = qr_factor(a, nb=12, ib=4, tree="hier", h=2, backend="batched")
    _assert_bit_identical(ser, bat)


def test_batched_backend_counters(tmp_path):
    a = np.random.default_rng(6).standard_normal((160, 32))
    f = qr_factor(
        a, nb=16, ib=8, tree="hier", h=2, backend="batched",
        trace=str(tmp_path / "trace.json"),
    )
    c = f.counters
    # Every op rides in exactly one stacked call (singletons count as B=1).
    assert c["batch.ops"] == c["ops.total"]
    assert 0 < c["batch.calls"] <= c["batch.ops"]


def test_parallel_wavefront_dispatch_bit_identical():
    a = np.random.default_rng(7).standard_normal((160, 32))
    ser = qr_factor(a, nb=16, ib=8, tree="hier", h=2, backend="serial")
    par = qr_factor(
        a, nb=16, ib=8, tree="hier", h=2, backend="parallel",
        n_procs=2, batch="wavefront",
    )
    assert par.stats.batch == "wavefront"
    _assert_bit_identical(ser, par)


def test_parallel_wavefront_survives_worker_crash():
    from repro.faults import FaultPlan

    a = np.random.default_rng(8).standard_normal((160, 32))
    ser = qr_factor(a, nb=16, ib=8, tree="hier", h=2, backend="serial")
    par = qr_factor(
        a, nb=16, ib=8, tree="hier", h=2, backend="parallel",
        n_procs=2, batch="wavefront",
        fault_plan=FaultPlan(crash_workers={0: 2}),
    )
    if par.stats.mode == "parallel":
        assert par.stats.workers_died >= 1
        _assert_bit_identical(ser, par)
