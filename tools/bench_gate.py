#!/usr/bin/env python3
"""Benchmark regression gate over the append-only trajectory file.

Runs the pinned QR benchmark (serial + batched + parallel backends, warm
persistent-session calls, plus a telemetry-disabled small-factorization
burst that bounds the tracing-off fast path), appends the entry to
``results/BENCH_qr.json``, and fails when wall time regresses beyond the
noise band — or when the derived op/flop counters drift at all — against
the minimum of the last few comparable entries (same pinned config, same
host fingerprint).  Three absolute floors fail the gate outright: the
batched backend slower than serial, a warm ``QRSession.factor`` call
slower than one-shot parallel, and a checkpointed parallel run more than
15% slower than a plain one.  See ``docs/performance.md``,
``docs/sessions.md``, and ``docs/robustness.md``.

Usage::

    python tools/bench_gate.py --smoke              # CI-sized problem
    python tools/bench_gate.py                      # full pinned sweep
    python tools/bench_gate.py --smoke --inject-slowdown 2.0   # self-test

``--inject-slowdown F`` multiplies the measured wall times by ``F`` after
the run: with history present the gate must then fail, which is how CI
proves the gate can actually catch a regression.  Injected entries are
**never** appended to the trajectory, so the poisoned numbers cannot
contaminate future baselines.

Exit status: 0 = pass (entry recorded), 1 = regression detected.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.perf.bench import (  # noqa: E402
    FULL_CONFIG,
    SMOKE_CONFIG,
    append_entry,
    baseline_for,
    check_regression,
    load_trajectory,
    run_qr_benchmark,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI-sized pinned problem instead of the full one",
    )
    parser.add_argument(
        "--out", default="results/BENCH_qr.json",
        help="trajectory file (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="wall-time noise band as a fraction (default: %(default)s)",
    )
    parser.add_argument(
        "--inject-slowdown", type=float, default=None, metavar="FACTOR",
        help="multiply measured times by FACTOR (gate self-test; "
        "the entry is not recorded)",
    )
    parser.add_argument(
        "--last-k", type=int, default=5,
        help="baseline = min over the newest K comparable entries "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    config = dict(SMOKE_CONFIG if args.smoke else FULL_CONFIG)
    label = "smoke" if args.smoke else "full"
    print(f"bench_gate: running {label} config {config}")
    entry = run_qr_benchmark(**config)
    if args.inject_slowdown is not None:
        for key in (
            "serial_s", "batched_s", "parallel_s", "session_warm_s",
            "checkpoint_s", "telemetry_off_s",
        ):
            entry["measured"][key] = round(
                entry["measured"][key] * args.inject_slowdown, 6
            )
        print(f"bench_gate: injected {args.inject_slowdown}x slowdown (not recorded)")
    m = entry["measured"]
    print(
        f"bench_gate: serial {m['serial_s']:.4f}s, "
        f"batched {m['batched_s']:.4f}s "
        f"({entry['derived']['batched_speedup']}x), "
        f"parallel {m['parallel_s']:.4f}s "
        f"({m['parallel_mode']}), "
        f"session warm {m['session_warm_s']:.4f}s "
        f"({entry['derived']['session_speedup']}x vs one-shot parallel), "
        f"checkpointed {m['checkpoint_s']:.4f}s "
        f"(+{entry['derived']['checkpoint_overhead_s']:.4f}s overhead), "
        f"telemetry-off burst {m['telemetry_off_s']:.4f}s, "
        f"counters {entry['counters']}"
    )

    entries = load_trajectory(args.out)
    baseline = baseline_for(entries, entry, last_k=args.last_k)
    if baseline is None:
        print("bench_gate: no comparable history; recording baseline entry")
        problems = []
    else:
        print(
            f"bench_gate: baseline over last {baseline['n']} comparable "
            f"entries: {baseline['times']}"
        )
        problems = check_regression(entry, baseline, tolerance=args.tolerance)

    if args.inject_slowdown is None:
        append_entry(args.out, entry)
        print(f"bench_gate: recorded entry #{len(entries) + 1} in {args.out}")

    if problems:
        for p in problems:
            print(f"bench_gate: REGRESSION: {p}")
        return 1
    print("bench_gate: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
