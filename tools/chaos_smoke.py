#!/usr/bin/env python3
"""CI chaos smoke: fixed-seed faults on both backends, bit-exactness asserted.

Runs one small tall-skinny QR three ways — clean serial, pulsar under a
fixed-seed packet-fault plan (drops + duplicates + delays), and parallel
with one scheduled worker kill — and exits non-zero unless both faulty
runs produce factors *bit-identical* to the clean one and actually
exercised the recovery machinery (retransmissions happened, the dead
worker was respawned).

Usage::

    PYTHONPATH=src python tools/chaos_smoke.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro import FaultPlan, qr_factor

NB, IB, H = 16, 8, 2
M, N = 12 * NB, 4 * NB


def main() -> int:
    a = np.random.default_rng(20140519).standard_normal((M, N))
    clean = qr_factor(a, nb=NB, ib=IB, tree="hier", h=H)
    failures = []

    plan = FaultPlan(seed=11, drop_rate=0.08, duplicate_rate=0.04, delay_rate=0.06)
    f = qr_factor(
        a, nb=NB, ib=IB, tree="hier", h=H,
        backend="pulsar", n_nodes=2, workers_per_node=2, fault_plan=plan,
    )
    print(
        f"pulsar : dropped={f.stats.faults_dropped} duplicated={f.stats.faults_duplicated} "
        f"delayed={f.stats.faults_delayed} retransmits={f.stats.retransmits} "
        f"dup_suppressed={f.stats.dup_suppressed}"
    )
    if not np.array_equal(clean.R, f.R):
        failures.append("pulsar R differs from the clean run under packet faults")
    if f.stats.faults_dropped == 0 or f.stats.retransmits == 0:
        failures.append("pulsar chaos run injected no drops — smoke is vacuous")

    plan = FaultPlan(seed=13, crash_workers={0: 2})
    f = qr_factor(
        a, nb=NB, ib=IB, tree="hier", h=H,
        backend="parallel", n_procs=2, fault_plan=plan,
    )
    print(
        f"parallel: died={f.stats.workers_died} respawned={f.stats.workers_respawned} "
        f"redispatched={f.stats.ops_redispatched}"
    )
    if not np.array_equal(clean.R, f.R):
        failures.append("parallel R differs from the clean run after a worker kill")
    if f.stats.workers_died != 1 or f.stats.workers_respawned != 1:
        failures.append("parallel chaos run killed no worker — smoke is vacuous")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if not failures:
        print("chaos smoke: both faulty runs bit-identical to the clean run")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
