#!/usr/bin/env python3
"""CI chaos smoke: fixed-seed faults on every backend, bit-exactness asserted.

Four scenarios, each exiting non-zero unless recovery machinery was both
*exercised* (faults actually landed) and *correct* (factors bit-identical
to a clean serial run):

* pulsar under a fixed-seed packet-fault plan (drops + duplicates + delays);
* parallel with one scheduled worker kill;
* silent data corruption — deterministic bit flips injected into kernel
  output tiles on the serial, batched, and parallel backends; every flip
  must be detected by the ABFT checksum guard and repaired by
  re-execution (zero undetected corruptions);
* kill/resume — a checkpointed run is hard-killed (``os._exit``) after
  its first checkpoint write, then resumed from the archive; the resumed
  run must skip at least one completed op and still match bit-exactly.

Usage::

    PYTHONPATH=src python tools/chaos_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

import numpy as np

from repro import FaultPlan, qr_factor
from repro.obs import recording
from repro.obs.record import K_SDC_DETECTED, K_SDC_INJECTED
from repro.qr import resume_factorization

NB, IB, H = 16, 8, 2
M, N = 12 * NB, 4 * NB
FLIP_RATE = 0.15
KILL_EXIT = 42

#: Child process for the kill/resume scenario: factor with a checkpoint
#: that hard-kills the process right after its first write — simulating a
#: machine loss mid-factorization (no cleanup, no atexit, no flush).
_KILL_CHILD = """
import os
import numpy as np
from repro import qr_factor
from repro.qr import CheckpointStore

a = np.random.default_rng(20140519).standard_normal(({m}, {n}))
ck = CheckpointStore({path!r}, every_ops=10,
                     on_write=lambda n: os._exit({exit_code}))
qr_factor(a, nb={nb}, ib={ib}, tree="hier", h={h}, checkpoint=ck)
raise SystemExit("checkpoint never fired — kill/resume smoke is vacuous")
"""


def _sdc_smoke(a: np.ndarray, clean_r: np.ndarray, failures: list[str]) -> None:
    plan = FaultPlan(seed=17, flip_rate=FLIP_RATE)
    for backend in ("serial", "batched", "parallel"):
        kw: dict = {"backend": backend}
        if backend == "parallel":
            kw.update(n_procs=2, batch="wavefront")
        with recording() as rec:
            f = qr_factor(a, nb=NB, ib=IB, tree="hier", h=H, fault_plan=plan, **kw)
        if backend == "parallel":
            inj, det = f.stats.sdc_injected, f.stats.sdc_detected
        else:
            inj = int(rec.counters.get(K_SDC_INJECTED, 0))
            det = int(rec.counters.get(K_SDC_DETECTED, 0))
        print(f"sdc/{backend}: injected={inj} detected={det}")
        if inj == 0:
            failures.append(f"sdc/{backend}: no flips injected — smoke is vacuous")
        if det != inj:
            failures.append(
                f"sdc/{backend}: {inj - det} injected flips escaped detection"
            )
        if not np.array_equal(clean_r, f.R):
            failures.append(f"sdc/{backend}: R differs from the clean run")


def _kill_resume_smoke(clean_r: np.ndarray, failures: list[str]) -> None:
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "smoke.ckpt.npz")
        child = _KILL_CHILD.format(
            m=M, n=N, nb=NB, ib=IB, h=H, path=path, exit_code=KILL_EXIT
        )
        proc = subprocess.run(
            [sys.executable, "-c", child], env=env, capture_output=True, text=True
        )
        if proc.returncode != KILL_EXIT:
            failures.append(
                f"kill/resume: child exited {proc.returncode}, expected {KILL_EXIT} "
                f"(stderr: {proc.stderr.strip()[-200:]})"
            )
            return
        f = resume_factorization(path)
        print(f"kill/resume: child killed after first checkpoint, "
              f"resume skipped {f.ops_skipped} ops")
        if f.ops_skipped < 1:
            failures.append("kill/resume: resume skipped no ops — smoke is vacuous")
        if not np.array_equal(clean_r, f.R):
            failures.append("kill/resume: resumed R differs from the clean run")


def main() -> int:
    a = np.random.default_rng(20140519).standard_normal((M, N))
    clean = qr_factor(a, nb=NB, ib=IB, tree="hier", h=H)
    failures: list[str] = []

    plan = FaultPlan(seed=11, drop_rate=0.08, duplicate_rate=0.04, delay_rate=0.06)
    f = qr_factor(
        a, nb=NB, ib=IB, tree="hier", h=H,
        backend="pulsar", n_nodes=2, workers_per_node=2, fault_plan=plan,
    )
    print(
        f"pulsar : dropped={f.stats.faults_dropped} duplicated={f.stats.faults_duplicated} "
        f"delayed={f.stats.faults_delayed} retransmits={f.stats.retransmits} "
        f"dup_suppressed={f.stats.dup_suppressed}"
    )
    if not np.array_equal(clean.R, f.R):
        failures.append("pulsar R differs from the clean run under packet faults")
    if f.stats.faults_dropped == 0 or f.stats.retransmits == 0:
        failures.append("pulsar chaos run injected no drops — smoke is vacuous")

    plan = FaultPlan(seed=13, crash_workers={0: 2})
    f = qr_factor(
        a, nb=NB, ib=IB, tree="hier", h=H,
        backend="parallel", n_procs=2, fault_plan=plan,
    )
    print(
        f"parallel: died={f.stats.workers_died} respawned={f.stats.workers_respawned} "
        f"redispatched={f.stats.ops_redispatched}"
    )
    if not np.array_equal(clean.R, f.R):
        failures.append("parallel R differs from the clean run after a worker kill")
    if f.stats.workers_died != 1 or f.stats.workers_respawned != 1:
        failures.append("parallel chaos run killed no worker — smoke is vacuous")

    _sdc_smoke(a, clean.R, failures)
    _kill_resume_smoke(clean.R, failures)

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if not failures:
        print("chaos smoke: every faulty/corrupted/killed run matched the clean run")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
