#!/usr/bin/env python3
"""Markdown link checker (zero-dependency, offline).

Scans markdown files for ``[text](target)`` links and verifies that

* relative file targets exist (resolved against the file's directory);
* ``#anchor`` fragments — standalone or attached to a file target — match
  a heading in the target document (GitHub slug rules: lowercase, spaces
  to dashes, punctuation dropped);
* ``http(s)`` / ``mailto`` links are *not* fetched (CI has no business
  depending on the network); they are only checked for empty targets.

When run on the default set (no arguments) it additionally fails on
**orphaned docs pages**: every ``docs/*.md`` must be reachable from
``README.md`` by following relative markdown links (breadth-first over
the link graph) — a page nobody links to is a page nobody reads.

Usage::

    python tools/check_links.py README.md DESIGN.md docs/*.md
    python tools/check_links.py            # default documentation set
                                           # + orphaned-docs check

Exit status is the number of broken links plus orphaned pages (0 = all
good).
"""

from __future__ import annotations

import pathlib
import re
import sys

# Inline links: [text](target "title")  — skips images' leading "!" so alt
# text is still captured by the same pattern.
_LINK_RE = re.compile(r"\[(?:[^\]\[]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")

DEFAULT_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/architecture.md",
    "docs/observability.md",
    "docs/performance.md",
    "docs/robustness.md",
    "docs/sessions.md",
    "docs/static-analysis.md",
    "docs/tuning.md",
)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    # Strip inline code/emphasis markers and links, keep the visible text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path: pathlib.Path) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(path: pathlib.Path):
    """Yield ``(line_number, target)`` for every inline link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(path: pathlib.Path, repo_root: pathlib.Path) -> list[str]:
    errors: list[str] = []
    try:
        shown = path.relative_to(repo_root)
    except ValueError:
        shown = path
    for lineno, target in iter_links(path):
        where = f"{shown}:{lineno}"
        if not target:
            errors.append(f"{where}: empty link target")
            continue
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # never fetched; presence is enough
        base, _, fragment = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if base:
            if not dest.exists():
                errors.append(f"{where}: missing file {target!r}")
                continue
        if fragment and dest.suffix == ".md" and dest.is_file():
            if fragment.lower() not in heading_slugs(dest):
                errors.append(f"{where}: no heading for anchor {target!r}")
    return errors


def reachable_from(start: pathlib.Path) -> set[pathlib.Path]:
    """Markdown files reachable from ``start`` via relative ``.md`` links."""
    seen = {start.resolve()}
    frontier = [start.resolve()]
    while frontier:
        page = frontier.pop()
        if not page.is_file():
            continue
        for _lineno, target in iter_links(page):
            if not target or target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            base = target.partition("#")[0]
            dest = (page.parent / base).resolve()
            if dest.suffix == ".md" and dest not in seen:
                seen.add(dest)
                frontier.append(dest)
    return seen


def find_orphans(repo_root: pathlib.Path) -> list[str]:
    """Every ``docs/*.md`` must be reachable from ``README.md``."""
    readme = repo_root / "README.md"
    if not readme.is_file():
        return [f"{readme}: file not found (cannot check docs reachability)"]
    seen = reachable_from(readme)
    return [
        f"{page.relative_to(repo_root)}: orphaned page "
        "(not reachable from README.md via markdown links)"
        for page in sorted((repo_root / "docs").glob("*.md"))
        if page.resolve() not in seen
    ]


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    paths = [pathlib.Path(p).resolve() for p in argv] if argv else [
        repo_root / rel for rel in DEFAULT_FILES if (repo_root / rel).exists()
    ]
    errors: list[str] = []
    for path in paths:
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path, repo_root))
    if not argv:  # default set: also enforce docs reachability
        errors.extend(find_orphans(repo_root))
    for err in errors:
        print(err, file=sys.stderr)
    checked = len(paths)
    print(f"checked {checked} file(s): {len(errors)} problem(s)")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main())
